package cluster

// The sharded-execution differential battery: every output surface of a
// sharded fleet run — result JSON, report table and JSON, per-machine
// trace summaries, fleet blame tables, metrics exports — must be
// byte-identical to the serial run of the same configuration. The
// workload matrix lives in testdata/shard_corpus.json as a checked-in
// regression corpus; TestShardCorpusCoverage guards it against rot.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"oversub/internal/metrics"
	"oversub/internal/sched"
	"oversub/internal/sim"
	"oversub/internal/trace"
)

// loadShardCorpus reads the checked-in differential corpus. Each entry is
// a serializable FleetConfig (host-only fields like Shards and the
// observation hooks are json:"-" and stay zero).
func loadShardCorpus(t *testing.T) []FleetConfig {
	t.Helper()
	b, err := os.ReadFile("testdata/shard_corpus.json")
	if err != nil {
		t.Fatal(err)
	}
	var cfgs []FleetConfig
	if err := json.Unmarshal(b, &cfgs); err != nil {
		t.Fatalf("corpus does not parse as []FleetConfig: %v", err)
	}
	if len(cfgs) < 4 {
		t.Fatalf("corpus has %d entries; the matrix needs at least 4", len(cfgs))
	}
	return cfgs
}

// resultBytes runs cfg at the given shard count and serializes the result.
func resultBytes(t *testing.T, cfg FleetConfig, shards int) []byte {
	t.Helper()
	cfg.Shards = shards
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardCorpusCoverage pins what the corpus must exercise, so future
// edits cannot quietly shrink the differential matrix: all three arrival
// processes, vanilla and VB and a detector, a heterogeneous-policy fleet,
// SMT, an uneven machines/shards split, and several fleet sizes.
func TestShardCorpusCoverage(t *testing.T) {
	cfgs := loadShardCorpus(t)
	arrivals := map[string]bool{}
	machines := map[int]bool{}
	var vb, det, hetero, smt, uneven bool
	for _, cfg := range cfgs {
		d := cfg.WithDefaults()
		a := d.Arrival
		if a == "" {
			a = "poisson"
		}
		arrivals[a] = true
		machines[d.Machines] = true
		vb = vb || d.Machine.Feat.VB
		det = det || d.Machine.Detect != 0
		hetero = hetero || len(d.MachinePolicies) > 1
		smt = smt || d.Machine.SMT > 1
		uneven = uneven || d.Machines%4 != 0
	}
	for _, a := range []string{"poisson", "mmpp", "diurnal"} {
		if !arrivals[a] {
			t.Errorf("corpus lost its %s arrival entry", a)
		}
	}
	if len(machines) < 3 {
		t.Errorf("corpus covers only %d fleet sizes, want >= 3", len(machines))
	}
	if !vb {
		t.Error("corpus lost its virtual-blocking entry")
	}
	if !det {
		t.Error("corpus lost its spin-detector entry")
	}
	if !hetero {
		t.Error("corpus lost its heterogeneous-policy entry")
	}
	if !smt {
		t.Error("corpus lost its SMT entry")
	}
	if !uneven {
		t.Error("corpus lost its uneven machines-per-shard entry")
	}
}

// TestShardedMatchesSerial is the core differential oracle: for every
// corpus entry, the sharded run's serialized FleetResult must be
// byte-identical to the serial run's at every shard count — including
// shards=1 (the explicit serial spelling) and a shard count above the
// machine count (clamped). Events is part of the serialization, so the
// de-duplicated executed-event merge is checked here too.
func TestShardedMatchesSerial(t *testing.T) {
	for ci, cfg := range loadShardCorpus(t) {
		serial := resultBytes(t, cfg, 0)
		for _, k := range []int{1, 2, 4, cfg.Machines + 3} {
			if got := resultBytes(t, cfg, k); !bytes.Equal(got, serial) {
				t.Errorf("corpus[%d] (%d machines, %s, seed %d): shards=%d diverged from serial\nserial:  %s\nsharded: %s",
					ci, cfg.Machines, cfg.Arrival, cfg.Seed, k, serial, got)
			}
		}
	}
}

// TestShardedReportMatchesSerial renders a two-cell fleet report from
// serial and sharded runs of the same sweep and byte-compares both the
// JSON envelope and the human table.
func TestShardedReportMatchesSerial(t *testing.T) {
	cfgs := loadShardCorpus(t)[:2]
	build := func(shards int) *Report {
		r := &Report{
			SchemaName: Schema,
			Arrival:    "mixed",
			QPS:        cfgs[0].QPS,
			SLOUs:      500,
			DurationMs: cfgs[0].Duration.Millis(),
			WarmupMs:   cfgs[0].WithDefaults().Warmup.Millis(),
			Seed:       cfgs[0].Seed,
		}
		for i, cfg := range cfgs {
			cfg.Shards = shards
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r.Cells = append(r.Cells, CellFor(res.Policy, fmt.Sprintf("v%d", i), res, 500*sim.Microsecond))
		}
		r.SLO = BuildSLO(r.Cells)
		return r
	}
	serial, sharded := build(0), build(4)
	var sj, kj, st, kt bytes.Buffer
	if err := serial.WriteJSON(&sj); err != nil {
		t.Fatal(err)
	}
	if err := sharded.WriteJSON(&kj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), kj.Bytes()) {
		t.Errorf("sharded report JSON diverged from serial:\nserial:\n%s\nsharded:\n%s", sj.String(), kj.String())
	}
	if err := serial.WriteTable(&st); err != nil {
		t.Fatal(err)
	}
	if err := sharded.WriteTable(&kt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Bytes(), kt.Bytes()) {
		t.Errorf("sharded report table diverged from serial:\nserial:\n%s\nsharded:\n%s", st.String(), kt.String())
	}
}

// tracedRun executes cfg with every machine traced and returns the
// per-machine rendered trace summaries plus the fleet blame table.
func tracedRun(t *testing.T, cfg FleetConfig, shards int) ([][]byte, []byte) {
	t.Helper()
	cfg.Shards = shards
	rings := AttachTracers(&cfg, 1<<21)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	sums := make([][]byte, len(rings))
	for m, r := range rings {
		if r.Dropped() > 0 {
			t.Fatalf("machine %d ring wrapped (%d dropped); grow the test ring", m, r.Dropped())
		}
		var buf bytes.Buffer
		if err := trace.WriteSummary(&buf, r.Events(), r.Dropped()); err != nil {
			t.Fatal(err)
		}
		sums[m] = buf.Bytes()
	}
	var blame bytes.Buffer
	if err := trace.WriteFleetBlame(&blame, trace.CollectMachines(rings), cfg.TenantNames()); err != nil {
		t.Fatal(err)
	}
	return sums, blame.Bytes()
}

// TestShardedTraceMatchesSerial extends the differential to the trace
// pipeline: every machine's rendered trace summary and the aggregated
// fleet blame table must be byte-identical between serial and sharded
// execution of a traced fleet.
func TestShardedTraceMatchesSerial(t *testing.T) {
	cfg := loadShardCorpus(t)[0]
	serialSums, serialBlame := tracedRun(t, cfg, 0)
	shardSums, shardBlame := tracedRun(t, cfg, 3)
	for m := range serialSums {
		if len(serialSums[m]) == 0 {
			t.Fatalf("machine %d summary is empty: traced run recorded nothing", m)
		}
		if !bytes.Equal(serialSums[m], shardSums[m]) {
			t.Errorf("machine %d trace summary diverged under sharding:\nserial:\n%s\nsharded:\n%s",
				m, serialSums[m], shardSums[m])
		}
	}
	if !bytes.Equal(serialBlame, shardBlame) {
		t.Errorf("fleet blame table diverged under sharding:\nserial:\n%s\nsharded:\n%s", serialBlame, shardBlame)
	}
}

// sampledRun executes cfg with a metrics sampler on every machine and
// returns each machine's JSON and CSV exports.
func sampledRun(t *testing.T, cfg FleetConfig, shards int) [][]byte {
	t.Helper()
	cfg.Shards = shards
	n := cfg.WithDefaults().Machines
	samplers := make([]*metrics.Sampler, n)
	for m := range samplers {
		samplers[m] = metrics.NewSampler(metrics.Config{})
	}
	cfg.SamplerFor = func(m int) sched.Sampler { return samplers[m] }
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, n)
	for m, s := range samplers {
		if s.Len() == 0 {
			t.Fatalf("machine %d sampler recorded nothing", m)
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		out[m] = buf.Bytes()
	}
	return out
}

// TestShardedMetricsMatchSerial extends the differential to the metrics
// subsystem: every machine's sampled time series must export byte-
// identically from serial and sharded runs, including the end-of-run
// partial-window flush (which reads the shard clock — all shard clocks
// must land exactly on the horizon for this to hold).
func TestShardedMetricsMatchSerial(t *testing.T) {
	cfg := loadShardCorpus(t)[1]
	serial := sampledRun(t, cfg, 0)
	sharded := sampledRun(t, cfg, 2)
	for m := range serial {
		if !bytes.Equal(serial[m], sharded[m]) {
			t.Errorf("machine %d metrics export diverged under sharding:\nserial:\n%s\nsharded:\n%s",
				m, serial[m], sharded[m])
		}
	}
}

// TestNonReplicableDispatcherFallsBack: jsq and ewma picks depend on
// completion feedback that only the owning shard observes, so sharding
// must silently fall back to serial — same bytes, no error — rather than
// let the replicas diverge.
func TestNonReplicableDispatcherFallsBack(t *testing.T) {
	for _, policy := range []string{"jsq", "ewma"} {
		cfg := smallFleet(3, 17)
		cfg.Policy = policy
		serial := resultBytes(t, cfg, 0)
		if got := resultBytes(t, cfg, 4); !bytes.Equal(got, serial) {
			t.Errorf("policy %s: sharded run diverged from serial instead of falling back", policy)
		}
	}
}

// TestEffectiveShards pins the shard-count resolution rules.
func TestEffectiveShards(t *testing.T) {
	cases := []struct {
		shards, machines int
		policy           string
		want             int
	}{
		{0, 4, "rr", 1},   // unset: serial
		{1, 4, "rr", 1},   // explicit serial
		{3, 4, "", 3},     // default dispatcher is replicable
		{4, 4, "rr", 4},   // one shard per machine
		{8, 4, "rr", 4},   // clamped to the machine count
		{4, 1, "rr", 1},   // single machine: nothing to shard
		{4, 4, "jsq", 1},  // stateful dispatcher: serial fallback
		{4, 4, "ewma", 1}, // stateful dispatcher: serial fallback
	}
	for _, c := range cases {
		cfg := FleetConfig{Machines: c.machines, Policy: c.policy, Shards: c.shards}
		if got := cfg.effectiveShards(); got != c.want {
			t.Errorf("effectiveShards(shards=%d machines=%d policy=%q) = %d, want %d",
				c.shards, c.machines, c.policy, got, c.want)
		}
	}
}

// TestShardedValidationMatchesSerial: invalid configurations must fail
// identically whether or not sharding is requested.
func TestShardedValidationMatchesSerial(t *testing.T) {
	bad := smallFleet(2, 1)
	bad.Policy = "rr"
	bad.Machine.SchedPolicy = "no-such-policy"
	_, serialErr := Run(bad)
	bad.Shards = 2
	_, shardErr := Run(bad)
	if serialErr == nil || shardErr == nil {
		t.Fatalf("invalid policy accepted: serial=%v sharded=%v", serialErr, shardErr)
	}
	if serialErr.Error() != shardErr.Error() {
		t.Errorf("serial and sharded runs reject differently:\nserial:  %v\nsharded: %v", serialErr, shardErr)
	}
}
