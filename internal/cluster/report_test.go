package cluster

import (
	"bytes"
	"strings"
	"testing"

	"oversub/internal/sim"
)

func sampleReport() *Report {
	cells := []Cell{
		{Policy: "rr", Variant: "vanilla", Machines: 1, OfferedQPS: 50000, GoodputQPS: 50100, MeanUs: 60, P50Us: 30, P99Us: 2000, P999Us: 3500, UtilMeanPct: 390, SLOMet: false},
		{Policy: "rr", Variant: "vanilla", Machines: 2, OfferedQPS: 50000, GoodputQPS: 49900, MeanUs: 25, P50Us: 20, P99Us: 110, P999Us: 220, UtilMeanPct: 250, SLOMet: true},
		{Policy: "rr", Variant: "vb+bwd", Machines: 1, OfferedQPS: 50000, GoodputQPS: 50100, MeanUs: 30, P50Us: 28, P99Us: 280, P999Us: 2400, UtilMeanPct: 400, SLOMet: true},
		{Policy: "rr", Variant: "vb+bwd", Machines: 2, OfferedQPS: 50000, GoodputQPS: 49900, MeanUs: 22, P50Us: 21, P99Us: 140, P999Us: 230, UtilMeanPct: 400, SLOMet: true},
	}
	return &Report{
		SchemaName: Schema,
		Arrival:    "poisson",
		QPS:        50000,
		SLOUs:      400,
		DurationMs: 500,
		WarmupMs:   50,
		Seed:       11,
		Cells:      cells,
		SLO:        BuildSLO(cells),
	}
}

func TestBuildSLO(t *testing.T) {
	rows := sampleReport().SLO
	want := map[string]int{"vanilla": 2, "vb+bwd": 1}
	if len(rows) != len(want) {
		t.Fatalf("got %d slo rows, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		if row.MinMachines != want[row.Variant] {
			t.Errorf("%s/%s min machines = %d, want %d", row.Policy, row.Variant, row.MinMachines, want[row.Variant])
		}
	}
	// A variant that never meets the SLO reports 0.
	rows = BuildSLO([]Cell{{Policy: "rr", Variant: "vanilla", Machines: 4, SLOMet: false}})
	if rows[0].MinMachines != 0 {
		t.Errorf("unmet SLO min machines = %d, want 0", rows[0].MinMachines)
	}
}

func TestReportValidate(t *testing.T) {
	good := sampleReport()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := sampleReport()
	bad.SchemaName = "oversub-fleet/v0"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema not rejected: %v", err)
	}
	bad = sampleReport()
	bad.Cells = nil
	if bad.Validate() == nil {
		t.Error("empty cells not rejected")
	}
	bad = sampleReport()
	bad.Cells[0].P50Us = bad.Cells[0].P99Us + 1
	if bad.Validate() == nil {
		t.Error("p50 > p99 not rejected")
	}
	bad = sampleReport()
	bad.Cells[0].Machines = 0
	if bad.Validate() == nil {
		t.Error("zero machines not rejected")
	}
}

// TestReportJSONDeterminism: serializing the same report twice is
// byte-identical, validation gates the write, and the output is the
// schema-tagged envelope consumers grep for.
func TestReportJSONDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleReport().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleReport().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical reports serialized differently")
	}
	if !strings.Contains(a.String(), `"schema": "oversub-fleet/v1"`) {
		t.Error("serialized report missing schema tag")
	}
	bad := sampleReport()
	bad.SchemaName = "nope"
	if err := bad.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("WriteJSON accepted an invalid report")
	}
}

func TestReportTable(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"vanilla", "vb+bwd", "minimum machines", "MET", "miss"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

func TestCellFor(t *testing.T) {
	res := &FleetResult{
		Machines:   2,
		OfferedQPS: 1000,
		GoodputQPS: 990,
		P50:        20 * sim.Microsecond,
		P99:        100 * sim.Microsecond,
		P999:       200 * sim.Microsecond,
	}
	c := CellFor("jsq", "vb", res, 150*sim.Microsecond)
	if !c.SLOMet {
		t.Error("cell should meet slo: p99 100us <= 150us, goodput 99%")
	}
	c = CellFor("jsq", "vb", res, 50*sim.Microsecond)
	if c.SLOMet {
		t.Error("cell should miss slo: p99 100us > 50us")
	}
	res.GoodputQPS = 900 // saturated
	c = CellFor("jsq", "vb", res, 150*sim.Microsecond)
	if c.SLOMet {
		t.Error("cell should miss slo via goodput guard")
	}
}
