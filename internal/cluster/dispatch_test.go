package cluster

import (
	"testing"

	"oversub/internal/sim"
)

func TestRoundRobinCycles(t *testing.T) {
	d, err := NewDispatcher("rr", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := d.Pick(); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
		d.Sent(w)
	}
}

func TestJSQPicksLeastLoaded(t *testing.T) {
	d, err := NewDispatcher("jsq", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Ties break toward the lowest index.
	if got := d.Pick(); got != 0 {
		t.Fatalf("empty tie pick = %d, want 0", got)
	}
	d.Sent(0)
	d.Sent(0)
	d.Sent(1)
	if got := d.Pick(); got != 2 {
		t.Fatalf("pick = %d, want idle machine 2", got)
	}
	d.Sent(2)
	d.Sent(2)
	d.Done(0, sim.Microsecond)
	d.Done(0, sim.Microsecond)
	if got := d.Pick(); got != 0 {
		t.Fatalf("pick after drain = %d, want drained machine 0", got)
	}
}

func TestEWMAExploresThenExploits(t *testing.T) {
	d, err := NewDispatcher("ewma", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every machine is explored once, in index order, before any scoring.
	for want := 0; want < 3; want++ {
		if got := d.Pick(); got != want {
			t.Fatalf("exploration pick = %d, want %d", got, want)
		}
		d.Sent(want)
	}
	// Machine 1 is fast, the others slow.
	d.Done(0, 900*sim.Microsecond)
	d.Done(1, 10*sim.Microsecond)
	d.Done(2, 900*sim.Microsecond)
	if got := d.Pick(); got != 1 {
		t.Fatalf("exploitation pick = %d, want fast machine 1", got)
	}
	// Pile load onto 1 until its inflight-scaled score loses.
	for i := 0; i < 200; i++ {
		d.Sent(1)
	}
	if got := d.Pick(); got == 1 {
		t.Fatal("ewma kept picking the overloaded machine")
	}
}

func TestNewDispatcherErrors(t *testing.T) {
	if _, err := NewDispatcher("rr", 0); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := NewDispatcher("magic", 2); err == nil {
		t.Error("unknown policy accepted")
	}
	d, err := NewDispatcher("", 2)
	if err != nil || d.Policy() != "rr" {
		t.Errorf("empty policy should default to rr, got %v %v", d, err)
	}
}
