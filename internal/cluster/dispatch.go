package cluster

import (
	"fmt"

	"oversub/internal/sim"
)

// Dispatcher routes each arriving request to a machine. Implementations
// see only load-balancer-visible signals — dispatch and completion
// notifications — never simulator internals, mirroring what a real front
// end could observe. All state updates happen at deterministic event
// boundaries, so policy decisions are part of the reproducible run.
type Dispatcher interface {
	// Policy names the dispatch policy ("rr", "jsq", "ewma").
	Policy() string
	// Pick chooses the machine for the next request.
	Pick() int
	// Sent records that a request was dispatched to machine m.
	Sent(m int)
	// Done records that machine m completed a request with the given
	// response latency.
	Done(m int, lat sim.Duration)
}

// Policies lists the supported dispatch policies in definition order.
func Policies() []string { return []string{"rr", "jsq", "ewma"} }

// NewDispatcher builds the named policy over n machines.
func NewDispatcher(policy string, n int) (Dispatcher, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: dispatcher needs at least one machine, got %d", n)
	}
	switch policy {
	case "", "rr":
		return &roundRobin{n: n}, nil
	case "jsq", "least-loaded":
		return &joinShortest{inflight: make([]int, n)}, nil
	case "ewma", "latency":
		return &ewmaDispatch{inflight: make([]int, n), ewma: make([]float64, n), seen: make([]bool, n)}, nil
	}
	return nil, fmt.Errorf("cluster: unknown dispatch policy %q (want rr, jsq, or ewma)", policy)
}

// roundRobin cycles through machines regardless of load — the oblivious
// baseline every informed policy is judged against.
type roundRobin struct {
	n    int
	next int
}

func (r *roundRobin) Policy() string { return "rr" }

func (r *roundRobin) Pick() int {
	m := r.next
	r.next = (r.next + 1) % r.n
	return m
}

func (r *roundRobin) Sent(int)               {}
func (r *roundRobin) Done(int, sim.Duration) {}

// joinShortest is join-shortest-queue: route to the machine with the
// fewest requests in flight, breaking ties toward the lowest index so the
// choice is deterministic.
type joinShortest struct {
	inflight []int
}

func (j *joinShortest) Policy() string { return "jsq" }

func (j *joinShortest) Pick() int {
	best := 0
	for m := 1; m < len(j.inflight); m++ {
		if j.inflight[m] < j.inflight[best] {
			best = m
		}
	}
	return best
}

func (j *joinShortest) Sent(m int)                 { j.inflight[m]++ }
func (j *joinShortest) Done(m int, _ sim.Duration) { j.inflight[m]-- }

// ewmaDispatch is latency-aware load balancing (the "peak EWMA" family):
// each machine's score is its smoothed response latency scaled by
// outstanding load, and the lowest score wins. Machines with no completed
// response yet are explored first, in index order, so every machine gets
// signal before the policy starts discriminating.
type ewmaDispatch struct {
	inflight []int
	ewma     []float64 // microseconds
	seen     []bool
}

const ewmaAlpha = 0.3

func (e *ewmaDispatch) Policy() string { return "ewma" }

func (e *ewmaDispatch) Pick() int {
	for m := range e.seen {
		if !e.seen[m] && e.inflight[m] == 0 {
			return m
		}
	}
	best, bestScore := 0, e.score(0)
	for m := 1; m < len(e.ewma); m++ {
		if s := e.score(m); s < bestScore {
			best, bestScore = m, s
		}
	}
	return best
}

func (e *ewmaDispatch) score(m int) float64 {
	return e.ewma[m] * float64(e.inflight[m]+1)
}

func (e *ewmaDispatch) Sent(m int) { e.inflight[m]++ }

func (e *ewmaDispatch) Done(m int, lat sim.Duration) {
	e.inflight[m]--
	us := lat.Micros()
	if !e.seen[m] {
		e.seen[m] = true
		e.ewma[m] = us
		return
	}
	e.ewma[m] = ewmaAlpha*us + (1-ewmaAlpha)*e.ewma[m]
}
