package cluster

import (
	"oversub/internal/sched"
	"oversub/internal/trace"
)

// AttachTracers equips every machine of the fleet with its own trace ring
// and installs the TracerFor hook, returning the rings machine-indexed.
// The machine count is resolved from the config's defaults, so set
// cfg.Machines (and anything that affects it) before calling. Tracing a
// fleet this way feeds trace.CollectMachines / WriteFleetChromeTrace /
// WriteFleetBlame, which aggregate across all machines — never just
// machine 0.
func AttachTracers(cfg *FleetConfig, capacity int) []*trace.Ring {
	n := cfg.WithDefaults().Machines
	rings := make([]*trace.Ring, n)
	for i := range rings {
		rings[i] = trace.NewRing(capacity)
	}
	cfg.TracerFor = func(m int) sched.Tracer {
		if m >= 0 && m < len(rings) {
			return rings[m]
		}
		return nil
	}
	return rings
}

// TenantNames returns the display names of the resolved tenant mix,
// tenant-indexed — the mapping blame reports use for their rows.
func (cfg FleetConfig) TenantNames() []string {
	cfg.defaults()
	names := make([]string, len(cfg.Tenants))
	for i := range cfg.Tenants {
		names[i] = cfg.Tenants[i].Name
	}
	return names
}
