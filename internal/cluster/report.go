package cluster

import (
	"encoding/json"
	"fmt"
	"io"

	"oversub/internal/schema"
	"oversub/internal/sim"
)

// Schema identifies the fleet report JSON envelope. Consumers must check
// it before parsing; it is bumped on any incompatible change.
const Schema = schema.FleetV1

// Cell is one (policy, variant, machine-count) grid point of a fleet
// sweep. All fields are derived values in fixed units — no sim types, no
// wall-clock — so the JSON encoding is byte-deterministic.
type Cell struct {
	Policy   string `json:"policy"`
	Variant  string `json:"variant"`
	Machines int    `json:"machines"`

	OfferedQPS float64 `json:"offered_qps"`
	GoodputQPS float64 `json:"goodput_qps"`

	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`

	UtilMeanPct   float64 `json:"util_mean_pct"`
	UtilSpreadPct float64 `json:"util_spread_pct"`
	Backlog       uint64  `json:"backlog"`
	SLOMet        bool    `json:"slo_met"`
}

// SLORow reports, for one (policy, variant), the smallest swept machine
// count that met the SLO. MinMachines 0 means no swept size met it.
type SLORow struct {
	Policy      string `json:"policy"`
	Variant     string `json:"variant"`
	MinMachines int    `json:"min_machines"`
}

// Report is the schema-versioned outcome of a fleet sweep.
type Report struct {
	SchemaName string  `json:"schema"`
	Arrival    string  `json:"arrival"`
	QPS        float64 `json:"qps"`
	SLOUs      float64 `json:"slo_us"`
	DurationMs float64 `json:"duration_ms"`
	WarmupMs   float64 `json:"warmup_ms"`
	Seed       uint64  `json:"seed"`

	Cells []Cell   `json:"cells"`
	SLO   []SLORow `json:"slo"`
}

// CellFor reduces one fleet run into its report cell.
func CellFor(policy, variant string, res *FleetResult, slo sim.Duration) Cell {
	return Cell{
		Policy:        policy,
		Variant:       variant,
		Machines:      res.Machines,
		OfferedQPS:    res.OfferedQPS,
		GoodputQPS:    res.GoodputQPS,
		MeanUs:        res.Mean.Micros(),
		P50Us:         res.P50.Micros(),
		P99Us:         res.P99.Micros(),
		P999Us:        res.P999.Micros(),
		UtilMeanPct:   res.UtilMeanPct,
		UtilSpreadPct: res.UtilSpreadPct,
		Backlog:       res.Backlog,
		SLOMet:        res.SLOMet(slo),
	}
}

// BuildSLO derives the min-machines summary from the cells, preserving
// first-appearance order of (policy, variant) pairs.
func BuildSLO(cells []Cell) []SLORow {
	var rows []SLORow
	find := func(policy, variant string) *SLORow {
		for i := range rows {
			if rows[i].Policy == policy && rows[i].Variant == variant {
				return &rows[i]
			}
		}
		rows = append(rows, SLORow{Policy: policy, Variant: variant})
		return &rows[len(rows)-1]
	}
	for _, c := range cells {
		row := find(c.Policy, c.Variant)
		if c.SLOMet && (row.MinMachines == 0 || c.Machines < row.MinMachines) {
			row.MinMachines = c.Machines
		}
	}
	return rows
}

// Validate checks the report's schema and internal consistency.
func (r *Report) Validate() error {
	if r.SchemaName != Schema {
		return fmt.Errorf("fleet report: schema %q, want %q", r.SchemaName, Schema)
	}
	if len(r.Cells) == 0 {
		return fmt.Errorf("fleet report: no cells")
	}
	if r.QPS <= 0 {
		return fmt.Errorf("fleet report: non-positive qps %g", r.QPS)
	}
	for i, c := range r.Cells {
		if c.Policy == "" || c.Variant == "" {
			return fmt.Errorf("fleet report: cell %d missing policy or variant", i)
		}
		if c.Machines <= 0 {
			return fmt.Errorf("fleet report: cell %d has %d machines", i, c.Machines)
		}
		if c.GoodputQPS < 0 || c.P99Us < 0 {
			return fmt.Errorf("fleet report: cell %d has negative measurements", i)
		}
		if c.P50Us > c.P99Us {
			return fmt.Errorf("fleet report: cell %d p50 %.1fus exceeds p99 %.1fus", i, c.P50Us, c.P99Us)
		}
	}
	for i, s := range r.SLO {
		if s.Policy == "" || s.Variant == "" {
			return fmt.Errorf("fleet report: slo row %d missing policy or variant", i)
		}
		if s.MinMachines < 0 {
			return fmt.Errorf("fleet report: slo row %d negative min_machines", i)
		}
	}
	return nil
}

// WriteJSON emits the schema-validated report as indented JSON. The
// encoding contains no timestamps or host state: equal configurations
// produce byte-identical files.
func (r *Report) WriteJSON(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteTable renders the sweep as a human-readable table: one block per
// policy, rows variant x machines, then the min-machines SLO summary.
func (r *Report) WriteTable(w io.Writer) error {
	fmt.Fprintf(w, "fleet: qps=%.0f arrival=%s slo=p99<=%.0fus duration=%.0fms seed=%d\n",
		r.QPS, r.Arrival, r.SLOUs, r.DurationMs, r.Seed)
	fmt.Fprintf(w, "%-8s %-8s %8s %12s %10s %10s %10s %8s %9s %5s\n",
		"policy", "variant", "machines", "goodput", "p50us", "p99us", "p999us", "util%", "backlog", "slo")
	for _, c := range r.Cells {
		met := "miss"
		if c.SLOMet {
			met = "MET"
		}
		if _, err := fmt.Fprintf(w, "%-8s %-8s %8d %12.0f %10.1f %10.1f %10.1f %8.0f %9d %5s\n",
			c.Policy, c.Variant, c.Machines, c.GoodputQPS,
			c.P50Us, c.P99Us, c.P999Us, c.UtilMeanPct, c.Backlog, met); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "\nminimum machines meeting the SLO (0 = unmet at every swept size):\n")
	for _, s := range r.SLO {
		if _, err := fmt.Fprintf(w, "%-8s %-8s %8d\n", s.Policy, s.Variant, s.MinMachines); err != nil {
			return err
		}
	}
	return nil
}
