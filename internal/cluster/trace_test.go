package cluster

import (
	"bytes"
	"strings"
	"testing"

	"oversub/internal/trace"
)

// TestFleetTracesEveryMachine is the regression test for the old CLI
// behaviour of silently tracing only machine 0: AttachTracers must equip
// every machine, every ring must see events, and each per-machine stream
// must satisfy the full oracle (lifecycle + blame exactness).
func TestFleetTracesEveryMachine(t *testing.T) {
	cfg := smallFleet(3, 11)
	rings := AttachTracers(&cfg, 1<<21)
	if len(rings) != 3 {
		t.Fatalf("AttachTracers returned %d rings for a 3-machine fleet", len(rings))
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for m, r := range rings {
		if r.Len() == 0 {
			t.Errorf("machine %d recorded no events: fleet tracing is machine-0-only again", m)
			continue
		}
		if r.Dropped() > 0 {
			t.Fatalf("machine %d ring wrapped (%d dropped); grow the test ring", m, r.Dropped())
		}
		for i, v := range r.Check() {
			if i >= 5 {
				t.Errorf("machine %d: ... more violations", m)
				break
			}
			t.Errorf("machine %d: %s", m, v)
		}
	}
}

// TestFleetBlameAggregation drives the fleet blame pipeline end to end:
// per-machine blame rows exist for the tenants, merge across machines, and
// the fleet report renders every tenant by name.
func TestFleetBlameAggregation(t *testing.T) {
	cfg := smallFleet(2, 5)
	rings := AttachTracers(&cfg, 1<<21)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	machines := trace.CollectMachines(rings)
	var rows []trace.BlameRow
	for _, m := range machines {
		b := trace.ComputeBlame(m.Events)
		if len(b.Requests) == 0 {
			t.Fatalf("machine %d has no completed request spans", m.Machine)
		}
		rows = append(rows, trace.BlameRows(m.Machine, b)...)
	}
	merged := trace.MergeBlameRows(rows)
	if len(merged) == 0 {
		t.Fatal("no merged blame rows")
	}
	var perMachine, fleet uint64
	for i := range rows {
		perMachine += rows[i].Requests
	}
	for i := range merged {
		if merged[i].Machine != -1 {
			t.Errorf("merged row %d keeps machine %d", i, merged[i].Machine)
		}
		fleet += merged[i].Requests
	}
	if perMachine != fleet {
		t.Fatalf("merge lost requests: %d per-machine vs %d merged", perMachine, fleet)
	}

	var buf bytes.Buffer
	if err := trace.WriteFleetBlame(&buf, machines, cfg.TenantNames()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	names := cfg.TenantNames()
	named := 0
	for _, row := range merged {
		if row.Tenant < 0 || row.Tenant >= len(names) {
			t.Errorf("merged row has out-of-range tenant %d", row.Tenant)
			continue
		}
		named++
		if !strings.Contains(out, names[row.Tenant]) {
			t.Errorf("fleet blame report missing tenant %q:\n%s", names[row.Tenant], out)
		}
	}
	if named == 0 {
		t.Fatalf("no named tenant rows in fleet blame report:\n%s", out)
	}
}
