// Package cluster simulates a fleet of oversubscribed machines under one
// deterministic event engine: N independent simulated kernels (each with
// its own VB/BWD configuration), heterogeneous service tenants replicated
// on every machine, an open-loop load generator with pluggable arrival
// processes, and a front-end dispatcher routing each request to a machine.
//
// It answers the capacity-planning question the paper's single-machine
// results imply: if virtual blocking and busy-waiting detection recover
// the latency lost to oversubscription, how many fewer machines does a
// fleet need to meet a tail-latency SLO at a given offered load?
//
// Everything — arrivals, dispatch decisions, per-kernel scheduling — runs
// in one event-ordered simulation, so identical seeds produce
// byte-identical fleet reports regardless of host parallelism.
package cluster

import (
	"fmt"

	"oversub/internal/bwd"
	"oversub/internal/futex"
	"oversub/internal/hw"
	"oversub/internal/locks"
	"oversub/internal/sched"
	"oversub/internal/sim"
	"oversub/internal/stats"
	"oversub/internal/workload"
)

// MachineConfig describes one machine's hardware and kernel features.
// Every machine in a fleet is identical; heterogeneity lives in the
// tenant mix, not the hardware.
type MachineConfig struct {
	// Cores is the number of physical cores (default 4).
	Cores int
	// SMT is hyper-threads per core (0/1 = HT off).
	SMT int
	// Feat selects kernel features (VB, pinning).
	Feat sched.Features
	// Detect selects the spin detector (BWD/PLE).
	Detect workload.Detection
	// SchedPolicy selects the scheduling policy every machine's kernel
	// runs ("" = cfs); FleetConfig.MachinePolicies overrides it
	// per-machine. It is distinct from FleetConfig.Policy, which names the
	// front-end dispatcher.
	SchedPolicy string
}

// FleetConfig describes one fleet experiment.
type FleetConfig struct {
	// Machines is the fleet size (default 1).
	Machines int
	// Machine configures every machine.
	Machine MachineConfig
	// Tenants is the service mix (default StandardMix).
	Tenants []TenantSpec
	// BatchThreads is the number of CPU-bound background threads
	// co-located on every machine (default 2, -1 = none). They model the
	// batch tier that motivates oversubscription in the first place:
	// with them the cores are never idle, so service wakeups always
	// contend with running compute — the regime where VB's cheap wakeup
	// path and BWD's spin eviction pay off.
	BatchThreads int
	// Policy selects the dispatcher: "rr", "jsq", "ewma" (default rr).
	Policy string
	// MachinePolicies, when non-empty, assigns scheduling policies round
	// robin across the fleet: machine m runs MachinePolicies[m %
	// len(MachinePolicies)], overriding Machine.SchedPolicy. This models
	// heterogeneous fleets (e.g. half cfs, half shinjuku) under one
	// dispatcher. Entries must name registered policies; "" means cfs. It
	// is a value field, so it participates in result-cache fingerprints.
	MachinePolicies []string
	// Arrival selects the arrival process: "poisson", "mmpp", "diurnal"
	// (default poisson).
	Arrival string
	// QPS is the fleet-wide offered load in requests per second
	// (default 50000). It does not scale with Machines: the experiment
	// holds load fixed and asks how many machines absorb it.
	QPS float64
	// Duration is the simulated run length (default 2s).
	Duration sim.Duration
	// Warmup discards completions arriving before this offset from the
	// latency accounting (default Duration/10).
	Warmup sim.Duration
	// Seed makes the run reproducible: equal seeds give byte-identical
	// results.
	Seed uint64
	// Shards splits the run into machine groups (machine m goes to shard
	// m mod Shards), each executing on its own event engine, concurrently
	// when GOMAXPROCS allows. Results are byte-identical to the serial run
	// — the differential battery in shard_test.go enforces this — so it is
	// a pure host-execution knob: excluded from result-cache fingerprints
	// (json:"-") and legal to flip on any cached experiment. 0 or 1 runs
	// serially. Sharding requires a replicable dispatcher; with jsq/ewma
	// (whose picks read completion state the shards cannot know under
	// lookahead) the run silently falls back to serial. See DESIGN.md §15.
	Shards int `json:"-"`
	// TracerFor, when non-nil, supplies a per-machine tracer (nil return
	// = untraced machine). Observation-only; excluded from result-cache
	// fingerprints.
	TracerFor func(machine int) sched.Tracer `json:"-"`
	// SamplerFor, when non-nil, supplies a per-machine metrics sampler.
	SamplerFor func(machine int) sched.Sampler `json:"-"`
}

// WithDefaults returns the configuration with every zero field resolved
// to its default, exactly as Run resolves them — so report headers and
// cache fingerprints can name the effective configuration.
func (cfg FleetConfig) WithDefaults() FleetConfig {
	cfg.defaults()
	return cfg
}

func (cfg *FleetConfig) defaults() {
	if cfg.Machines <= 0 {
		cfg.Machines = 1
	}
	if cfg.Machine.Cores <= 0 {
		cfg.Machine.Cores = 4
	}
	if cfg.Machine.SMT <= 0 {
		cfg.Machine.SMT = 1
	}
	if len(cfg.Tenants) == 0 {
		cfg.Tenants = StandardMix()
	}
	if cfg.BatchThreads == 0 {
		cfg.BatchThreads = 2
	}
	if cfg.BatchThreads < 0 {
		cfg.BatchThreads = 0
	}
	if cfg.QPS <= 0 {
		cfg.QPS = 50000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * sim.Second
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = cfg.Duration / 10
	}
	if cfg.Warmup >= cfg.Duration {
		cfg.Warmup = cfg.Duration / 2
	}
}

// MachineResult is one machine's view of the run.
type MachineResult struct {
	Machine int
	// SchedPolicy names the scheduling policy this machine's kernel ran
	// (heterogeneous fleets differ per machine).
	SchedPolicy string
	// Issued counts requests the dispatcher routed here; Done counts
	// completions; Backlog is the difference — requests still queued or
	// in service when the clock stopped.
	Issued  uint64
	Done    uint64
	Backlog uint64
	// UtilPct is mean CPU utilization over the run in percent-of-one-core
	// units summed over the cpuset.
	UtilPct float64
	// P50 and P99 summarize recorded (post-warmup) response latency.
	P50, P99 sim.Duration
	Metrics  sched.Metrics
	BWD      bwd.Stats
}

// TenantResult aggregates one tenant across all machines.
type TenantResult struct {
	Name string
	// Issued counts arrivals; Recorded counts post-warmup completions
	// that entered the latency accounting.
	Issued   uint64
	Done     uint64
	Recorded uint64
	Mean     sim.Duration
	P50      sim.Duration
	P99      sim.Duration
	P999     sim.Duration
}

// FleetResult is the outcome of one fleet run.
type FleetResult struct {
	Machines int
	Policy   string
	Arrival  string
	// OfferedQPS is the configured load; GoodputQPS is recorded
	// completions divided by the measurement window. A saturated fleet
	// shows goodput well below offered.
	OfferedQPS float64
	GoodputQPS float64
	// Fleet-wide recorded response latency (merged across machines and
	// tenants via stats.Digest).
	Mean sim.Duration
	P50  sim.Duration
	P99  sim.Duration
	P999 sim.Duration
	Max  sim.Duration
	// UtilMeanPct and UtilSpreadPct summarize load placement: the mean
	// per-machine utilization and the max-min gap (a dispatcher quality
	// signal).
	UtilMeanPct   float64
	UtilSpreadPct float64
	// Backlog is the fleet-wide count of requests issued but not
	// completed when the clock stopped.
	Backlog uint64
	// Events is the engine's executed-event count (host-cost measure).
	Events uint64

	PerMachine []MachineResult
	PerTenant  []TenantResult
}

// SLOMet reports whether the run met a p99 SLO: the tail is under the
// bound and the fleet actually absorbed the load (goodput within 5% of
// offered — a saturated fleet can show a fine p99 over the few requests
// it manages to serve while its backlog grows without bound).
func (r *FleetResult) SLOMet(slo sim.Duration) bool {
	return r.P99 <= slo && r.GoodputQPS >= 0.95*r.OfferedQPS
}

// machine bundles one simulated machine's kernel and per-tenant services.
type machine struct {
	k    *sched.Kernel
	det  *bwd.Detector
	smp  sched.Sampler
	svcs []*workload.Service // one per tenant
	recs []*stats.Digest     // one per tenant, post-warmup latency
}

// fleet is the in-flight run state shared by the generator trampolines.
// Under sharded execution each shard holds one fleet value — a full
// replica of the driver state (dispatcher, generators, issued matrix) but
// with machines built only for the shard's own slice (nil elsewhere).
type fleet struct {
	cfg      FleetConfig
	eng      *sim.Engine
	machines []*machine
	disp     Dispatcher
	end      sim.Time
	warmEnd  sim.Time
	issued   [][]uint64 // [machine][tenant]
	// genExec counts generator (arrival-stream) event firings. Sharded
	// runs replay the full driver on every shard, so the merged executed-
	// event count must de-duplicate the replicas: see runSharded.
	genExec uint64
}

// tenantGen drives one tenant's open-loop arrival stream.
type tenantGen struct {
	f    *fleet
	idx  int
	spec *TenantSpec
	proc Process
	rng  *sim.Rand
	lane int
}

// batchBody is the co-located compute tier: an endless CPU burn in
// scheduler-quantum-sized chunks. It never blocks, so the fair scheduler
// time-slices it against the service workers — the thread never exits and
// is simply abandoned when the clock stops at the horizon.
func batchBody(t *sched.Thread) {
	for {
		t.Run(500 * sim.Microsecond)
	}
}

func genArrive(arg any, _, _ uint64) {
	g := arg.(*tenantGen)
	g.f.genExec++
	now := g.f.eng.Now()
	if now >= g.f.end {
		return // horizon reached: the stream stops, backlog is counted
	}
	g.emit(now)
	g.f.eng.AfterCall(g.proc.Next(now, g.rng), genArrive, g, 0, 0)
}

// emit builds one request, routes it, and posts it. Open loop: issuance
// never waits for completions, so overload shows up as backlog and
// latency, exactly as it would at a real front end.
func (g *tenantGen) emit(now sim.Time) {
	m := g.f.disp.Pick()
	g.f.disp.Sent(m)
	g.f.issued[m][g.idx]++
	g.lane++
	work := g.spec.workFor(g.rng)
	mc := g.f.machines[m]
	if mc == nil {
		// Shard replica: another shard owns machine m. The dispatch
		// decision, issued count, lane, and work draw above still had to
		// happen — every shard replays the identical driver stream so its
		// RNG and dispatcher state stay in lockstep — but the request
		// itself materializes only on the owning shard.
		return
	}
	req := &workload.Request{
		Work:    work,
		Lane:    g.lane,
		Machine: m,
		Tenant:  g.idx,
		Skip:    now < g.f.warmEnd,
	}
	mc.svcs[g.idx].Post(req)
}

// newFleetEngine builds a fleet engine from the experiment seed. Sharded
// runs build every shard engine with the same seed: each shard replays
// the identical driver stream (generators, dispatcher) and the
// byte-identical merge depends on all replicas drawing the same sequence.
func newFleetEngine(seed uint64) *sim.Engine {
	return sim.NewEngine(seed*0x9E3779B97F4A7C15 + 0xF1EE7)
}

// validate rejects configurations Run cannot execute. Shared by the
// serial and sharded paths so both fail identically.
func (cfg *FleetConfig) validate() error {
	for i := range cfg.Tenants {
		if cfg.Tenants[i].Share <= 0 {
			return fmt.Errorf("cluster: tenant %q needs a positive share", cfg.Tenants[i].Name)
		}
	}
	if !sched.ValidPolicy(cfg.Machine.SchedPolicy) {
		return fmt.Errorf("cluster: unknown scheduling policy %q", cfg.Machine.SchedPolicy)
	}
	for _, p := range cfg.MachinePolicies {
		if !sched.ValidPolicy(p) {
			return fmt.Errorf("cluster: unknown scheduling policy %q", p)
		}
	}
	return nil
}

// Run executes one fleet experiment. The returned result is a pure
// function of cfg's value fields: the serial path runs all machines on
// one event engine, and cfg.Shards > 1 splits them across concurrently
// executing engines with a byte-identical merge (see runSharded).
func Run(cfg FleetConfig) (*FleetResult, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if k := cfg.effectiveShards(); k > 1 {
		return runSharded(cfg, k)
	}

	eng := newFleetEngine(cfg.Seed)
	f, err := buildFleet(cfg, eng, nil)
	if err != nil {
		return nil, err
	}
	f.start()
	eng.Run(f.end)
	f.stop()
	return f.collect(eng.Executed()), nil
}

// buildFleet constructs the run state for one engine. owns selects the
// machines this engine simulates (nil = all): construction still walks
// every machine index in order — the engine-RNG draw sequence (one
// service split per machine x tenant, then one generator split per
// tenant) is part of the run's definition and must be identical on every
// shard replica — but kernels, services, and detectors materialize only
// for owned machines; the rest stay nil.
func buildFleet(cfg FleetConfig, eng *sim.Engine, owns func(m int) bool) (*fleet, error) {
	totalShare := 0.0
	for i := range cfg.Tenants {
		totalShare += cfg.Tenants[i].Share
	}

	disp, err := NewDispatcher(cfg.Policy, cfg.Machines)
	if err != nil {
		return nil, err
	}

	f := &fleet{
		cfg:     cfg,
		eng:     eng,
		disp:    disp,
		end:     sim.Time(0).Add(cfg.Duration),
		warmEnd: sim.Time(0).Add(cfg.Warmup),
		issued:  make([][]uint64, cfg.Machines),
	}

	// Build machines in index order; construction order is part of the
	// run's definition (RNG splits, thread spawn order).
	perSocket := (cfg.Machine.Cores + 1) / 2
	if perSocket < 1 {
		perSocket = 1
	}
	topo := hw.Topology{Sockets: 2, CoresPerSocket: perSocket, ThreadsPerCore: cfg.Machine.SMT}
	for m := 0; m < cfg.Machines; m++ {
		f.issued[m] = make([]uint64, len(cfg.Tenants))
		if owns != nil && !owns(m) {
			// Replica lockstep: burn the service RNG splits the owning
			// shard draws for this machine, without building it.
			for range cfg.Tenants {
				eng.Rand().Split()
			}
			f.machines = append(f.machines, nil)
			continue
		}
		pol := cfg.Machine.SchedPolicy
		if len(cfg.MachinePolicies) > 0 {
			pol = cfg.MachinePolicies[m%len(cfg.MachinePolicies)]
		}
		k := sched.New(eng, sched.Config{
			Topo:   topo,
			NCPUs:  cfg.Machine.Cores * cfg.Machine.SMT,
			Costs:  sched.DefaultCosts(),
			Feat:   cfg.Machine.Feat,
			Seed:   cfg.Seed + uint64(m)*1000 + 99,
			Policy: pol,
		})
		if cfg.TracerFor != nil {
			if tr := cfg.TracerFor(m); tr != nil {
				k.SetTracer(tr)
			}
		}
		mc := &machine{k: k}
		if cfg.SamplerFor != nil {
			if s := cfg.SamplerFor(m); s != nil {
				k.SetSampler(s)
				mc.smp = s
			}
		}
		switch cfg.Machine.Detect {
		case workload.DetectBWD:
			mc.det = bwd.New(k, bwd.Config{Mode: bwd.ModeBWD})
		case workload.DetectPLE:
			mc.det = bwd.New(k, bwd.Config{Mode: bwd.ModePLE})
		case workload.DetectOff:
			// Vanilla machines run without wake-assist.
		}
		tbl := futex.NewTable(k, 0)
		for ti := range cfg.Tenants {
			ts := &cfg.Tenants[ti]
			shards := make([]locks.Locker, ts.Shards)
			for s := range shards {
				if ts.SpinLocks {
					shards[s] = locks.NewTTAS(k)
				} else {
					shards[s] = locks.NewMutex(tbl)
				}
			}
			rec := &stats.Digest{}
			mc.recs = append(mc.recs, rec)
			workers := ts.Workers
			if workers <= 0 {
				workers = 1
			}
			mc.svcs = append(mc.svcs, workload.NewService(k, workload.ServiceConfig{
				Name:    fmt.Sprintf("m%d-%s", m, ts.Name),
				Workers: workers,
				Shards:  shards,
				Parse:   3 * sim.Microsecond,
				Lookup:  1500 * sim.Nanosecond,
				Send:    3 * sim.Microsecond,
				Latency: rec,
				// The explicit RNG pins the engine-RNG draw to this point
				// in construction order, owned or not; NewService would
				// draw the identical split itself, but un-owned machines
				// must burn the same draw (above) for replica lockstep.
				RNG: eng.Rand().Split(),
				OnDone: func(req *workload.Request, lat sim.Duration) {
					f.disp.Done(req.Machine, lat)
				},
			}))
		}
		for b := 0; b < cfg.BatchThreads; b++ {
			k.Spawn(fmt.Sprintf("m%d-batch-%d", m, b), batchBody)
		}
		f.machines = append(f.machines, mc)
	}

	// One generator per tenant, each with its own RNG split (split order
	// = tenant order) and arrival process at its share of fleet QPS.
	for ti := range cfg.Tenants {
		ts := &cfg.Tenants[ti]
		rate := cfg.QPS * ts.Share / totalShare
		proc, err := NewProcess(cfg.Arrival, rate)
		if err != nil {
			return nil, err
		}
		g := &tenantGen{f: f, idx: ti, spec: ts, proc: proc, rng: eng.Rand().Split()}
		eng.AfterCall(proc.Next(0, g.rng), genArrive, g, 0, 0)
	}
	return f, nil
}

// start arms the per-machine detectors.
func (f *fleet) start() {
	for _, mc := range f.machines {
		if mc != nil && mc.det != nil {
			mc.det.Start()
		}
	}
}

// stop disarms detectors and flushes samplers, mirroring
// RunToCompletion's end-of-run sampler flush.
func (f *fleet) stop() {
	for _, mc := range f.machines {
		if mc != nil && mc.det != nil {
			mc.det.Stop()
		}
	}
	for _, mc := range f.machines {
		if mc != nil && mc.smp != nil {
			mc.smp.Sample(mc.k, f.eng.Now())
		}
	}
}

// collect reduces the run state into a FleetResult. All aggregation is
// digest merges and integer sums — deterministic in any order, iterated in
// index order anyway. events is the executed-event count: the engine's
// counter on the serial path, the de-duplicated merge across shard
// engines on the sharded one (every machine in f.machines is non-nil by
// the time collect runs — runSharded grafts owned machines into one view).
func (f *fleet) collect(events uint64) *FleetResult {
	cfg := f.cfg
	measure := cfg.Duration - cfg.Warmup

	res := &FleetResult{
		Machines:   cfg.Machines,
		Policy:     f.disp.Policy(),
		Arrival:    cfg.Arrival,
		OfferedQPS: cfg.QPS,
		Events:     events,
	}
	if res.Arrival == "" {
		res.Arrival = "poisson"
	}

	var fleetDigest stats.Digest
	utilMin, utilMax := -1.0, -1.0
	for m, mc := range f.machines {
		var md stats.Digest
		var issued, done uint64
		for ti := range cfg.Tenants {
			md.Merge(mc.recs[ti])
			issued += f.issued[m][ti]
			done += mc.svcs[ti].Done()
		}
		util := float64(mc.k.TotalBusy()) / float64(cfg.Duration) * 100
		mr := MachineResult{
			Machine:     m,
			SchedPolicy: mc.k.PolicyName(),
			Issued:      issued,
			Done:        done,
			Backlog:     issued - done,
			UtilPct:     util,
			P50:         md.Percentile(50),
			P99:         md.Percentile(99),
			Metrics:     mc.k.Metrics,
		}
		if mc.det != nil {
			mr.BWD = mc.det.Stats
		}
		res.PerMachine = append(res.PerMachine, mr)
		res.Backlog += mr.Backlog
		res.UtilMeanPct += util
		if utilMin < 0 || util < utilMin {
			utilMin = util
		}
		if util > utilMax {
			utilMax = util
		}
		fleetDigest.Merge(&md)
	}
	res.UtilMeanPct /= float64(cfg.Machines)
	if utilMax >= 0 {
		res.UtilSpreadPct = utilMax - utilMin
	}

	for ti := range cfg.Tenants {
		var td stats.Digest
		var issued, done uint64
		for m, mc := range f.machines {
			td.Merge(mc.recs[ti])
			issued += f.issued[m][ti]
			done += mc.svcs[ti].Done()
		}
		res.PerTenant = append(res.PerTenant, TenantResult{
			Name:     cfg.Tenants[ti].Name,
			Issued:   issued,
			Done:     done,
			Recorded: td.Count(),
			Mean:     td.Mean(),
			P50:      td.Percentile(50),
			P99:      td.Percentile(99),
			P999:     td.Percentile(99.9),
		})
	}

	res.Mean = fleetDigest.Mean()
	res.P50 = fleetDigest.Percentile(50)
	res.P99 = fleetDigest.Percentile(99)
	res.P999 = fleetDigest.Percentile(99.9)
	res.Max = fleetDigest.Max()
	res.GoodputQPS = float64(fleetDigest.Count()) / measure.Seconds()
	return res
}
