// Sharded fleet execution: the "embarrassingly shardable" level of the
// PDES roadmap. Machines in a fleet never exchange simulation events —
// they interact only through the front-end driver (arrival generators +
// dispatcher) — so the fleet shards by machine with *infinite* lookahead:
// every shard runs the whole horizon as one window, no null messages.
//
// Determinism comes from the replicated-driver construction rather than
// cross-shard synchronization. Every shard gets its own engine built with
// the same seed, replays the complete driver — identical generator RNG
// streams, identical dispatcher decisions, identical issued accounting —
// and materializes requests only for the machines it owns (machine m
// lives on shard m mod K). Each machine therefore sees, on its shard
// engine, exactly the event sequence it would see on the shared serial
// engine: its kernel, services, and futex/epoll state are engine-local,
// its arrival instants and work draws come from driver streams that are
// bit-equal across replicas, and same-instant ordering within a machine
// is preserved because relative schedule order among a machine's events
// is the same in every replica. The merge then just selects each
// machine's rows from its owning shard — all reductions (digests, sums,
// util) were already per-machine — which is why every output surface is
// byte-identical to serial execution (enforced by shard_test.go and the
// golden fleet pin in the root test suite).
//
// This only holds for drivers that are pure functions of their own
// replicated state. Round-robin dispatch is (a counter); jsq and ewma are
// not — their picks read completion feedback that the owning shard alone
// observes — so effectiveShards falls back to serial for them rather than
// silently diverging.
package cluster

import (
	"fmt"

	"oversub/internal/sim"
)

// replicablePolicy reports whether the dispatch policy is a pure function
// of dispatch-side state, so every shard can replay it in lockstep.
func replicablePolicy(policy string) bool {
	return policy == "" || policy == "rr"
}

// effectiveShards resolves cfg.Shards against the run's constraints:
// at most one shard per machine, serial for non-replicable dispatchers.
func (cfg *FleetConfig) effectiveShards() int {
	k := cfg.Shards
	if k > cfg.Machines {
		k = cfg.Machines
	}
	if k <= 1 || !replicablePolicy(cfg.Policy) {
		return 1
	}
	return k
}

// runSharded executes the fleet across k shard engines. cfg has defaults
// applied and passed validation.
func runSharded(cfg FleetConfig, k int) (*FleetResult, error) {
	engines := make([]*sim.Engine, k)
	reps := make([]*fleet, k)
	for s := 0; s < k; s++ {
		engines[s] = newFleetEngine(cfg.Seed)
		slot := s
		f, err := buildFleet(cfg, engines[s], func(m int) bool { return m%k == slot })
		if err != nil {
			return nil, err
		}
		reps[s] = f
	}

	grp := sim.NewShardGroup(engines)
	for _, f := range reps {
		f.start()
	}
	// Machines exchange no cross-shard events: infinite lookahead, one
	// window, shards in parallel up to GOMAXPROCS.
	grp.Run(reps[0].end, 0, k)
	for _, f := range reps {
		f.stop()
	}

	// Replica lockstep check: every shard must have replayed the exact
	// same driver stream. A divergence here is a determinism bug (some
	// owned-machine state leaked into the driver), and the results would
	// not merge; fail loudly rather than report garbage.
	for s := 1; s < k; s++ {
		if reps[s].genExec != reps[0].genExec {
			return nil, fmt.Errorf("cluster: shard %d replayed %d generator events, shard 0 %d: driver replicas diverged",
				s, reps[s].genExec, reps[0].genExec)
		}
		for m := range reps[0].issued {
			for ti := range reps[0].issued[m] {
				if reps[s].issued[m][ti] != reps[0].issued[m][ti] {
					return nil, fmt.Errorf("cluster: shard %d issued %d to machine %d tenant %d, shard 0 issued %d: driver replicas diverged",
						s, reps[s].issued[m][ti], m, ti, reps[0].issued[m][ti])
				}
			}
		}
	}

	// Merge: graft each machine from its owning shard into one fleet
	// view. Driver state (dispatcher, issued) is identical across
	// replicas, so shard 0's copy stands for all.
	merged := &fleet{
		cfg:      cfg,
		disp:     reps[0].disp,
		end:      reps[0].end,
		warmEnd:  reps[0].warmEnd,
		issued:   reps[0].issued,
		machines: make([]*machine, cfg.Machines),
	}
	for m := range merged.machines {
		merged.machines[m] = reps[m%k].machines[m]
	}

	// Executed events, de-duplicated: each shard fired the full generator
	// stream (genExec, equal everywhere — checked above) plus its own
	// machines' events. The serial engine would have fired the generator
	// stream once.
	events := reps[0].genExec
	for s, e := range engines {
		events += e.Executed() - reps[s].genExec
	}
	return merged.collect(events), nil
}
