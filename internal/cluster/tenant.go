package cluster

import (
	"oversub/internal/sim"
)

// TenantSpec describes one service class running on every machine of the
// fleet. Each machine hosts an identical copy of each tenant (its workers,
// its lock shards); the load generator splits fleet QPS across tenants by
// Share and the dispatcher routes each tenant's arrivals across machines.
type TenantSpec struct {
	// Name labels the tenant in reports and thread names.
	Name string
	// Share is the tenant's fraction of the fleet's offered QPS. Shares
	// are normalized over the tenant set, so they need not sum to 1.
	Share float64
	// Workers is the tenant's event-loop thread count per machine.
	Workers int
	// Shards is the tenant's lock-shard count (0 = no locking).
	Shards int
	// SpinLocks selects TTAS spinlocks for the shards instead of futex
	// mutexes: such a tenant busy-waits under contention, so it responds
	// to BWD rather than VB.
	SpinLocks bool
	// Work is the mean request body time inside the critical section.
	Work sim.Duration
	// WorkJitter is the uniform +-fraction applied per request.
	WorkJitter float64
	// HeavyTail is the probability a request costs 10x Work — the rare
	// slow request that dominates the tail.
	HeavyTail float64
}

// workFor draws one request's body time from the tenant's distribution.
func (ts *TenantSpec) workFor(rng *sim.Rand) sim.Duration {
	w := rng.Jitter(ts.Work, ts.WorkJitter)
	if ts.HeavyTail > 0 && rng.Float64() < ts.HeavyTail {
		w *= 10
	}
	if w < 0 {
		w = 0
	}
	return w
}

// StandardMix returns the default heterogeneous tenant set: a cache tier
// (many cheap requests, futex-sharded — VB-sensitive), a web tier
// (mid-cost requests with a heavy tail), and an analytics tier whose
// spinlock synchronization busy-waits under oversubscription —
// BWD-sensitive. On the default 4-core machine the mix runs 16 workers:
// 4x thread oversubscription, the regime the paper targets.
func StandardMix() []TenantSpec {
	return []TenantSpec{
		{
			Name:       "cache",
			Share:      0.50,
			Workers:    6,
			Shards:     4,
			Work:       2 * sim.Microsecond,
			WorkJitter: 0.3,
		},
		{
			Name:       "web",
			Share:      0.35,
			Workers:    6,
			Shards:     2,
			Work:       15 * sim.Microsecond,
			WorkJitter: 0.5,
			HeavyTail:  0.02,
		},
		{
			Name:       "analytics",
			Share:      0.15,
			Workers:    4,
			Shards:     2,
			SpinLocks:  true,
			Work:       40 * sim.Microsecond,
			WorkJitter: 0.3,
		},
	}
}
