package cluster

import (
	"fmt"
	"strings"
	"testing"

	"oversub/internal/sim"
)

// drawGaps renders n inter-arrival gaps as a canonical string, advancing a
// simulated clock the way the load generator does.
func drawGaps(t *testing.T, kind string, rate float64, seed uint64, n int) string {
	t.Helper()
	proc, err := NewProcess(kind, rate)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(seed)
	var sb strings.Builder
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		g := proc.Next(now, rng)
		if g <= 0 {
			t.Fatalf("%s: gap %d is %v, want positive", kind, i, g)
		}
		now = now.Add(g)
		fmt.Fprintf(&sb, "%d\n", int64(g))
	}
	return sb.String()
}

// TestArrivalDeterminism pins the seed contract: identical (kind, rate,
// seed) produce byte-identical gap sequences.
func TestArrivalDeterminism(t *testing.T) {
	for _, kind := range ArrivalKinds() {
		a := drawGaps(t, kind, 30000, 42, 4000)
		b := drawGaps(t, kind, 30000, 42, 4000)
		if a != b {
			t.Errorf("%s: identical seeds produced different gap sequences", kind)
		}
		c := drawGaps(t, kind, 30000, 43, 4000)
		if a == c {
			t.Errorf("%s: different seeds produced identical gap sequences", kind)
		}
	}
}

// TestArrivalMeanRate checks each process realizes its configured mean
// rate: the empirical rate over many arrivals must be within 15%. MMPP and
// diurnal modulate instantaneous rate but are constructed to preserve the
// long-run mean.
func TestArrivalMeanRate(t *testing.T) {
	const rate = 30000.0
	const n = 60000
	for _, kind := range ArrivalKinds() {
		proc, err := NewProcess(kind, rate)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRand(7)
		now := sim.Time(0)
		for i := 0; i < n; i++ {
			now = now.Add(proc.Next(now, rng))
		}
		got := float64(n) / sim.Duration(now.Sub(0)).Seconds()
		if got < rate*0.85 || got > rate*1.15 {
			t.Errorf("%s: empirical rate %.0f/s outside 15%% of %.0f/s", kind, got, rate)
		}
	}
}

// TestArrivalBurstiness separates the processes: over coarse windows the
// MMPP's per-window arrival counts must vary more than the Poisson's
// (regime switching), and the diurnal process must show a sinusoidal
// swing between its busiest and quietest windows.
func TestArrivalBurstiness(t *testing.T) {
	counts := func(kind string) []int {
		proc, err := NewProcess(kind, 50000)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRand(3)
		now := sim.Time(0)
		end := sim.Time(0).Add(2 * sim.Second)
		window := 100 * sim.Millisecond
		var out []int
		for i := 0; i < 20; i++ {
			out = append(out, 0)
		}
		for now < end {
			now = now.Add(proc.Next(now, rng))
			idx := int(now.Sub(0) / window)
			if idx < len(out) {
				out[idx]++
			}
		}
		return out
	}
	spread := func(c []int) float64 {
		min, max := c[0], c[0]
		for _, v := range c {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return float64(max-min) / float64(max)
	}
	poisson := spread(counts("poisson"))
	mmpp := spread(counts("mmpp"))
	if mmpp <= poisson {
		t.Errorf("mmpp window spread %.2f not burstier than poisson %.2f", mmpp, poisson)
	}
	diurnal := spread(counts("diurnal"))
	if diurnal <= poisson {
		t.Errorf("diurnal window spread %.2f not larger than poisson %.2f", diurnal, poisson)
	}
}

// TestNewProcessErrors pins the constructor's input validation.
func TestNewProcessErrors(t *testing.T) {
	if _, err := NewProcess("poisson", 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewProcess("lunar", 1000); err == nil {
		t.Error("unknown kind accepted")
	}
	p, err := NewProcess("", 1000)
	if err != nil || p.Kind() != "poisson" {
		t.Errorf("empty kind should default to poisson, got %v %v", p, err)
	}
}
