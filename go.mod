module oversub

go 1.22
