package oversub

import (
	"strings"
	"testing"
)

func TestFacadeOMPTeam(t *testing.T) {
	sys := NewSystem(SystemConfig{Cores: 4, Seed: 1})
	sum := 0
	sys.Spawn("master", func(th *Thread) {
		team := sys.NewOMPTeam(8)
		team.ParallelFor(th, 0, 100, 4, OMPDynamic, func(th *Thread, w, i int) {
			th.Run(5 * Microsecond)
			sum += i
		})
		team.Shutdown(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 4950 {
		t.Errorf("sum = %d, want 4950", sum)
	}
}

func TestFacadeRWLock(t *testing.T) {
	sys := NewSystem(SystemConfig{Cores: 4, Seed: 2})
	rw := sys.NewRWLock()
	reads := 0
	for i := 0; i < 6; i++ {
		sys.Spawn("r", func(th *Thread) {
			rw.RLock(th)
			reads++
			th.Run(Millisecond)
			rw.RUnlock(th)
		})
	}
	sys.Spawn("w", func(th *Thread) {
		th.Run(500 * Microsecond)
		rw.Lock(th)
		th.Run(Millisecond)
		rw.Unlock(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if reads != 6 {
		t.Errorf("reads = %d, want 6", reads)
	}
}

func TestFacadeTraceRing(t *testing.T) {
	sys := NewSystem(SystemConfig{Cores: 2, Seed: 3})
	ring := sys.Trace(1 << 12)
	sys.Spawn("w", func(th *Thread) { th.Run(2 * Millisecond) })
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if ring.Len() == 0 {
		t.Fatal("trace ring empty")
	}
	var sb strings.Builder
	if _, err := ring.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dispatch") {
		t.Error("trace dump missing dispatch events")
	}
}

func TestFacadeWebServing(t *testing.T) {
	r := RunWebServing(WebConfig{Workers: 8, Cores: 4, Requests: 1200, Seed: 4})
	if r.Served != 1200 || r.ThroughputOpsSec <= 0 {
		t.Fatalf("web serving run implausible: %+v", r)
	}
	if r.P95 < r.Mean/2 || r.P99 < r.P95 {
		t.Errorf("latency ordering broken: mean=%v p95=%v p99=%v", r.Mean, r.P95, r.P99)
	}
}

func TestFacadeRunFor(t *testing.T) {
	sys := NewSystem(SystemConfig{Cores: 1, Seed: 5})
	sys.Spawn("forever", func(th *Thread) {
		for i := 0; i < 1_000_000; i++ {
			th.Run(Millisecond)
		}
	})
	if err := sys.RunFor(10 * Millisecond); err == nil {
		t.Error("RunFor should report unfinished threads")
	}
	if sys.Now() < Time(10*Millisecond) {
		t.Errorf("clock %v did not reach the horizon", sys.Now())
	}
}

func TestFacadeCostsOverride(t *testing.T) {
	costs := DefaultCosts()
	costs.ContextSwitch = 50 * Microsecond // absurd, to be observable
	slow := NewSystem(SystemConfig{Cores: 1, Costs: &costs, Seed: 6})
	for i := 0; i < 2; i++ {
		slow.Spawn("w", func(th *Thread) {
			for j := 0; j < 10; j++ {
				th.Run(200 * Microsecond)
				th.Yield()
			}
		})
	}
	if err := slow.Run(); err != nil {
		t.Fatal(err)
	}
	// 4ms of work + ~20 switches * 50us >= 5ms.
	if slow.Now() < Time(5*Millisecond) {
		t.Errorf("end %v; the cost override was not applied", slow.Now())
	}
}

func TestFacadeMiscConstructors(t *testing.T) {
	if PaperTopology(2).NumCPUs() != 72 {
		t.Error("PaperTopology wrong")
	}
	sig := NewSpinSig(0x1000, 4, true)
	if !sig.HasPause || !sig.Branch.Backward() {
		t.Error("NewSpinSig wrong")
	}
	sys := NewSystem(SystemConfig{Cores: 2, Seed: 7})
	if sys.Futexes() == nil || sys.Kernel() == nil || sys.Engine() == nil {
		t.Error("accessors returned nil")
	}
	sem := sys.NewSemaphore(1)
	cond := sys.NewCond()
	mu := sys.NewMutex()
	poll := sys.NewPoll()
	done := false
	sys.Spawn("w", func(th *Thread) {
		sem.Acquire(th)
		mu.Lock(th)
		cond.Signal(th) // no waiters: harmless
		mu.Unlock(th)
		sem.Release(th)
		poll.Post("x")
		if poll.Wait(th) != "x" {
			panic("poll round trip failed")
		}
		done = true
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("misc constructor exercise did not finish")
	}
}

func TestFacadePLEDetector(t *testing.T) {
	sys := NewSystem(SystemConfig{Cores: 1, Detect: DetectPLE, Features: Features{VM: true}, Seed: 8})
	flag := sys.NewWord(0)
	sig := NewSpinSig(0x2000, 6, true) // PAUSE loop: PLE-visible
	sys.Spawn("spinner", func(th *Thread) {
		th.SpinUntil(func() bool { return flag.Load() == 1 }, sig)
	})
	sys.Spawn("worker", func(th *Thread) {
		th.Run(3 * Millisecond)
		flag.Store(1)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Detector().Stats.Detections == 0 {
		t.Error("PLE missed a PAUSE loop inside a VM")
	}
}

func TestFacadeSetNiceAccessible(t *testing.T) {
	sys := NewSystem(SystemConfig{Cores: 1, Seed: 9})
	th := sys.Spawn("n", func(th *Thread) { th.Run(Millisecond) })
	th.SetNice(-5)
	if th.Nice() != -5 {
		t.Errorf("Nice = %d", th.Nice())
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}
