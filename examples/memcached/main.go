// Memcached: the paper's cloud workload (§4.2, Figure 12). A simulated
// memcached server — epoll event loops, futex-mutex hash-table shards —
// under a mutilate-style closed-loop client, with 4x thread
// oversubscription, with and without virtual blocking in epoll and futex.
//
// Run with: go run ./examples/memcached
package main

import (
	"fmt"

	"oversub"
)

func main() {
	const requests = 20000
	fmt.Printf("memcached, %d requests, 10:1 GET/SET, 2KB values, closed loop\n\n", requests)
	fmt.Printf("%-26s %12s %10s %10s %10s\n",
		"configuration", "tput(ops/s)", "mean(us)", "p95(us)", "p99(us)")

	show := func(label string, workers, cores int, vb bool) oversub.MemcachedResult {
		r := oversub.RunMemcached(oversub.MemcachedConfig{
			Workers: workers, Cores: cores, VB: vb, Requests: requests, Seed: 11,
		})
		fmt.Printf("%-26s %12.0f %10.1f %10.1f %10.1f\n",
			label, r.ThroughputOpsSec, r.Mean.Micros(), r.P95.Micros(), r.P99.Micros())
		return r
	}

	base := show("4 workers / 4 cores", 4, 4, false)
	over := show("16 workers / 4 cores", 16, 4, false)
	vb := show("16 workers / 4 cores +VB", 16, 4, true)

	fmt.Println()
	fmt.Printf("oversubscription kept throughput within %.1f%% of baseline but\n",
		100*(1-over.ThroughputOpsSec/base.ThroughputOpsSec))
	fmt.Printf("inflated p99 latency %.1fx; virtual blocking cut that tail by %.0f%%.\n",
		float64(over.P99)/float64(base.P99),
		100*(1-float64(vb.P99)/float64(over.P99)))
	fmt.Println("\nThe tail came from the kernel's sleep/wakeup path: epoll_wait sleeps")
	fmt.Println("and futex mutex waits each paid core selection, remote runqueue locks,")
	fmt.Println("and migrations on every wake. VB replaces all of it with a flag clear.")
}
