// Elastic: the paper's core pitch. A container starts on 8 cores; mid-run
// the provider scales it to 2, then to 32. A job provisioned with 8
// threads cannot use the extra cores; a job provisioned with 32 threads
// can — provided oversubscription is efficient, which is what virtual
// blocking buys on the shrunken cpuset.
//
// Run with: go run ./examples/elastic
package main

import (
	"fmt"

	"oversub"
)

func run(threads int, vb bool) oversub.Duration {
	spec := oversub.FindBenchmark("ocean")
	r := oversub.RunBenchmark(spec, oversub.BenchConfig{
		Threads: threads,
		Cores:   8,
		Seed:    3,
		Feat:    oversub.Features{VB: vb},
		Plan: []oversub.CPUChange{
			{At: 10 * oversub.Millisecond, Cores: 2},  // provider reclaims CPUs
			{At: 25 * oversub.Millisecond, Cores: 32}, // burst capacity arrives
		},
	})
	if r.Err != nil {
		panic(r.Err)
	}
	return r.ExecTime
}

func main() {
	fmt.Println("ocean (SPLASH-2) in an elastic container:")
	fmt.Println("  t=0     8 cores")
	fmt.Println("  t=10ms  scaled down to 2 cores")
	fmt.Println("  t=25ms  scaled up to 32 cores")
	fmt.Println()

	t8 := run(8, false)
	t32 := run(32, false)
	t32vb := run(32, true)

	fmt.Printf("  8 threads  (vanilla):          %v\n", t8)
	fmt.Printf("  32 threads (vanilla):          %v\n", t32)
	fmt.Printf("  32 threads (virtual blocking): %v\n", t32vb)
	fmt.Println()
	fmt.Printf("over-provisioning threads pays off %.2fx once the kernel handles\n",
		float64(t8)/float64(t32vb))
	fmt.Println("oversubscription efficiently: 8 threads strand 24 burst cores, while")
	fmt.Println("32 virtual-blocking threads ride through the 2-core squeeze and")
	fmt.Println("expand onto all 32 cores the moment they appear.")
}
