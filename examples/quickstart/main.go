// Quickstart: build a simulated machine, run an oversubscribed
// barrier-synchronized workload on it, and see what virtual blocking does
// to the blocking synchronization path.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"oversub"
)

const (
	threads = 32
	cores   = 8
	rounds  = 200
)

// runOnce executes the workload on a fresh system and reports the virtual
// execution time and kernel metrics.
func runOnce(vb bool) (oversub.Duration, oversub.Metrics) {
	sys := oversub.NewSystem(oversub.SystemConfig{
		Cores:    cores,
		Features: oversub.Features{VB: vb},
		Seed:     42,
	})
	barrier := sys.NewBarrier(threads)
	for i := 0; i < threads; i++ {
		sys.Spawn(fmt.Sprintf("worker-%d", i), func(t *oversub.Thread) {
			for r := 0; r < rounds; r++ {
				t.Run(100 * oversub.Microsecond) // this round's share of work
				barrier.Await(t)                 // converge with the other threads
			}
		})
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return oversub.Duration(sys.Now()), sys.Metrics()
}

func main() {
	fmt.Printf("%d threads on %d cores, %d barrier rounds\n\n", threads, cores, rounds)

	vanilla, mv := runOnce(false)
	vb, mb := runOnce(true)

	fmt.Printf("%-18s %12s %12s\n", "", "vanilla", "virtual-blk")
	fmt.Printf("%-18s %12v %12v\n", "execution time", vanilla, vb)
	fmt.Printf("%-18s %12d %12d\n", "futex waits", mv.FutexWaits, mb.FutexWaits)
	fmt.Printf("%-18s %12d %12d\n", "full wakeups", mv.Wakeups, mb.Wakeups)
	fmt.Printf("%-18s %12d %12d\n", "VB flag wakeups", mv.VBWakes, mb.VBWakes)
	fmt.Printf("%-18s %12d %12d\n", "migrations",
		mv.MigrationsInNode+mv.MigrationsCrossNode,
		mb.MigrationsInNode+mb.MigrationsCrossNode)
	fmt.Printf("\nvirtual blocking speedup: %.2fx\n", float64(vanilla)/float64(vb))
	fmt.Println("\nMost wakeups became flag clears: no sleep queue, no idlest-core")
	fmt.Println("search, no remote runqueue locks, no migration — the thread was on")
	fmt.Println("its runqueue all along, just skipped by the scheduler.")
}
