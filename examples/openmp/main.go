// OpenMP: an NPB-style iterative solver written against the omp runtime —
// a persistent worker team that sleeps between parallel regions. Region
// boundaries are broadcast wakeups, so an oversubscribed team exercises
// the exact futex path virtual blocking repairs.
//
// Run with: go run ./examples/openmp
package main

import (
	"fmt"

	"oversub"
)

const (
	teamSize = 32
	cores    = 4
	sweeps   = 60
	rows     = 512
)

func run(vb bool, schedule oversub.OMPSchedule) oversub.Duration {
	sys := oversub.NewSystem(oversub.SystemConfig{
		Cores:    cores,
		Features: oversub.Features{VB: vb},
		Seed:     5,
	})
	sys.Spawn("master", func(t *oversub.Thread) {
		team := sys.NewOMPTeam(teamSize)
		for s := 0; s < sweeps; s++ {
			// One relaxation sweep: each row costs a row-dependent amount,
			// like a banded matrix.
			team.ParallelFor(t, 0, rows, 8, schedule,
				func(t *oversub.Thread, worker, row int) {
					cost := 8 + row%9
					t.Run(oversub.Duration(cost) * oversub.Microsecond)
				})
		}
		team.Shutdown(t)
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return oversub.Duration(sys.Now())
}

func main() {
	fmt.Printf("NPB-style solver: %d-thread OpenMP team on %d cores, %d sweeps\n\n",
		teamSize, cores, sweeps)
	for _, s := range []oversub.OMPSchedule{oversub.OMPStatic, oversub.OMPDynamic, oversub.OMPGuided} {
		van := run(false, s)
		vb := run(true, s)
		fmt.Printf("schedule(%-7v)  vanilla %10v   virtual-blocking %10v   speedup %.2fx\n",
			s, van, vb, float64(van)/float64(vb))
	}
	fmt.Println("\nEvery region start broadcasts to the parked team and every region")
	fmt.Println("end converges on a barrier; with 8x oversubscription, VB turns those")
	fmt.Println("sleep/wakeup storms into flag flips. Static scheduling benefits most:")
	fmt.Println("dynamic work-stealing drains the region before slow-waking workers")
	fmt.Println("arrive, so its critical path is the barrier either way.")
}
