// Spindetect: a hand-rolled busy-wait pipeline (the lu/volrend pattern the
// paper calls "user-customized spinning"), oversubscribed 4:1, with and
// without busy-waiting detection. BWD reads only the simulated LBR and
// PMCs — no application knowledge — yet deschedules exactly the spinners.
//
// Run with: go run ./examples/spindetect
package main

import (
	"fmt"

	"oversub"
)

const (
	threads = 16
	cores   = 4
	laps    = 60
	chunk   = 50 * oversub.Microsecond
)

// pipeline builds a wavefront ring: thread i's lap L starts only after
// thread i-1 finished lap L, and a thread may run at most one lap ahead of
// its successor (a bounded blocking factor, as in lu's 2D wavefront). The
// waits are plain flag-test loops — the kind neither Intel PLE nor AMD PF
// can see.
func pipeline(sys *oversub.System) {
	flags := make([]*oversub.Word, threads)
	for i := range flags {
		flags[i] = sys.NewWord(0)
	}
	for i := 0; i < threads; i++ {
		i := i
		sig := oversub.NewSpinSig(0x100000+uint64(i)*0x40, 4, false)
		prev := flags[(i+threads-1)%threads]
		next := flags[(i+1)%threads]
		sys.Spawn(fmt.Sprintf("stage-%d", i), func(t *oversub.Thread) {
			for lap := uint64(1); lap <= laps; lap++ {
				lap := lap
				if i > 0 {
					t.SpinUntil(func() bool { return prev.Load() >= lap }, sig)
				}
				if lap > 1 && i < threads-1 {
					t.SpinUntil(func() bool { return next.Load() >= lap-1 }, sig)
				}
				t.Run(chunk)
				flags[i].Store(lap)
			}
		})
	}
}

func run(detect oversub.DetectMode) (oversub.Duration, oversub.DetectorStats) {
	sys := oversub.NewSystem(oversub.SystemConfig{
		Cores:  cores,
		Detect: detect,
		Seed:   7,
	})
	pipeline(sys)
	if err := sys.Run(); err != nil {
		panic(err)
	}
	var stats oversub.DetectorStats
	if sys.Detector() != nil {
		stats = sys.Detector().Stats
	}
	return oversub.Duration(sys.Now()), stats
}

func main() {
	fmt.Printf("%d pipeline stages on %d cores, %d laps of %v each\n\n",
		threads, cores, laps, chunk)

	vanilla, _ := run(oversub.DetectOff)
	bwd, stats := run(oversub.DetectBWD)

	fmt.Printf("vanilla:            %v (spinners burn whole time slices)\n", vanilla)
	fmt.Printf("busy-wait detection: %v\n\n", bwd)
	fmt.Printf("BWD gain: %.1fx\n\n", float64(vanilla)/float64(bwd))
	fmt.Printf("detector windows:    %d\n", stats.Windows)
	fmt.Printf("detections:          %d (%d true, %d false)\n",
		stats.Detections, stats.TruePositive, stats.FalsePositive)
	fmt.Println("\nEvery detection came from three architectural observables: a full")
	fmt.Println("16-entry LBR of one identical backward branch, zero L1d misses, and")
	fmt.Println("zero dTLB misses in the 100us window.")
}
